package wrfsim

import (
	"testing"

	"nestwrf/internal/metrics"
	"nestwrf/internal/mpi"
	"nestwrf/internal/nest"
)

// paperConfig is the paper's Table 2 multi-sibling setup: the pacific
// parent with four regions of interest. Unlike testConfig, every
// domain is large enough to decompose over thousands of ranks, so it
// is the fixture for full BG/P-scale functional runs.
func paperConfig() *nest.Domain {
	root := nest.Root("pacific", 286, 307)
	root.AddChild("sibling1", 394, 418, 3, 5, 5)
	root.AddChild("sibling2", 232, 202, 3, 150, 10)
	root.AddChild("sibling3", 232, 256, 3, 10, 160)
	root.AddChild("sibling4", 313, 337, 3, 140, 150)
	return root
}

// scaleSnapshot captures every virtual-time observable of a run the
// high-rank tests compare: final fields, makespan, wait aggregates,
// and the per-phase totals with the real-time Wall field zeroed.
func scaleSnapshot(out *Output) *Output {
	phases := make([]mpi.PhaseTotal, len(out.Phases))
	copy(phases, out.Phases)
	for i := range phases {
		phases[i].Sum.Wall = 0
	}
	out.Phases = phases
	return out
}

func equalOutputs(t *testing.T, label string, a, b *Output) {
	t.Helper()
	if d := a.Parent.MaxDiff(b.Parent); d != 0 {
		t.Errorf("%s: parent fields differ by %v (want exactly 0)", label, d)
	}
	for i := range a.Nests {
		if d := a.Nests[i].MaxDiff(b.Nests[i]); d != 0 {
			t.Errorf("%s: nest %d fields differ by %v (want exactly 0)", label, i, d)
		}
	}
	if a.MaxClock != b.MaxClock || a.AvgWait != b.AvgWait || a.MaxWait != b.MaxWait {
		t.Errorf("%s: clock/wait aggregates differ: (%v, %v, %v) != (%v, %v, %v)",
			label, a.MaxClock, a.AvgWait, a.MaxWait, b.MaxClock, b.AvgWait, b.MaxWait)
	}
	if len(a.Phases) != len(b.Phases) {
		t.Fatalf("%s: phase count %d != %d", label, len(a.Phases), len(b.Phases))
	}
	for i := range a.Phases {
		if a.Phases[i].Name != b.Phases[i].Name || a.Phases[i].Ranks != b.Phases[i].Ranks ||
			a.Phases[i].Sum != b.Phases[i].Sum || a.Phases[i].MaxWait != b.Phases[i].MaxWait {
			t.Errorf("%s: phase %q differs: %+v != %+v", label, a.Phases[i].Name, a.Phases[i], b.Phases[i])
		}
	}
}

// A functional run on the sharded mpi runtime must be bit-identical to
// one on the retained single-mutex reference runtime: same fields,
// same virtual clocks and waits, same per-phase stats.
func TestFunctionalShardedMatchesReference(t *testing.T) {
	for _, s := range []Strategy{Sequential, Concurrent} {
		run := func(ref bool) *Output {
			mpi.SetReference(ref)
			defer mpi.SetReference(false)
			out, err := Run(testConfig(), baseOpts(s))
			if err != nil {
				t.Fatal(err)
			}
			return scaleSnapshot(out)
		}
		equalOutputs(t, map[Strategy]string{Sequential: "sequential", Concurrent: "concurrent"}[s],
			run(false), run(true))
	}
}

// A full paper-scale functional run must be deterministic: repeated
// runs at thousands of ranks produce bit-identical fields, clocks and
// phase stats. (GOMAXPROCS variation is covered in the mpi package's
// high-rank determinism test; here the whole wrfsim stack runs.)
func TestFunctionalHighRankDeterminism(t *testing.T) {
	ranks := 2048
	if raceEnabled {
		ranks = 128 // the race detector multiplies per-goroutine cost
	}
	if testing.Short() {
		ranks = 128
	}
	opt := baseOpts(Concurrent)
	opt.Ranks = ranks
	opt.Steps = 1
	cfg := paperConfig()
	run := func() *Output {
		out, err := Run(cfg, opt)
		if err != nil {
			t.Fatal(err)
		}
		return scaleSnapshot(out)
	}
	equalOutputs(t, "run-to-run", run(), run())
}

// Options.Metrics must publish the run's payload-pool snapshot, and
// the pool must actually serve steady-state coupling traffic.
func TestRunRecordsPoolMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	opt := baseOpts(Sequential)
	opt.Metrics = reg
	out, err := Run(testConfig(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if out.Pools.Hits == 0 || out.Pools.Frees == 0 {
		t.Fatalf("pool stats not populated: %+v", out.Pools)
	}
	if hr := reg.Gauge("mpi_payload_pool_hit_rate").Value(); hr <= 0 || hr > 1 {
		t.Errorf("recorded hit rate %v out of (0, 1]", hr)
	}
	if got := reg.Gauge("mpi_payload_pool_hits").Value(); got != float64(out.Pools.Hits) {
		t.Errorf("recorded hits %v != snapshot %d", got, out.Pools.Hits)
	}
}
