package wrfsim

import (
	"testing"

	"nestwrf/internal/mpi"
	"nestwrf/internal/nest"
	"nestwrf/internal/solver"
	"nestwrf/internal/vtopo"
)

// A nested functional run must produce the same fields bit for bit on
// any rank count and under either strategy: the solver guarantees
// parallel==serial, boundary conditions are pure functions of parent
// cells, and feedback accumulates every parent cell's child block in
// canonical child-global order regardless of decomposition.
func TestRunBitIdenticalAcrossDecompositions(t *testing.T) {
	cfg := testConfig()
	runWith := func(ranks int, s Strategy) *Output {
		opt := baseOpts(s)
		opt.Ranks = ranks
		out, err := Run(cfg, opt)
		if err != nil {
			t.Fatalf("ranks=%d strategy=%v: %v", ranks, s, err)
		}
		return out
	}
	ref := runWith(1, Sequential)
	for _, tc := range []struct {
		ranks int
		s     Strategy
	}{{6, Sequential}, {32, Sequential}, {32, Concurrent}} {
		got := runWith(tc.ranks, tc.s)
		if d := ref.Parent.MaxDiff(got.Parent); d != 0 {
			t.Errorf("ranks=%d strategy=%v: parent differs from 1-rank run by %v (want exactly 0)", tc.ranks, tc.s, d)
		}
		for i := range ref.Nests {
			if d := ref.Nests[i].MaxDiff(got.Nests[i]); d != 0 {
				t.Errorf("ranks=%d strategy=%v: nest %d differs from 1-rank run by %v (want exactly 0)", tc.ranks, tc.s, i, d)
			}
		}
	}
}

// The fast coupling path (cached plans, pooled owned-buffer payloads)
// must be bit-identical to the reference path that recomputes patterns
// and allocates fresh slices every step, with the solver's reference
// kernel and exchange enabled as well.
func TestRunFastMatchesReference(t *testing.T) {
	cfg := testConfig()
	run := func(ref bool) *Output {
		SetReference(ref)
		solver.SetReference(ref)
		defer func() {
			SetReference(false)
			solver.SetReference(false)
		}()
		out, err := Run(cfg, baseOpts(Sequential))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	fast := run(false)
	slow := run(true)
	if d := fast.Parent.MaxDiff(slow.Parent); d != 0 {
		t.Errorf("parent: fast differs from reference by %v (want exactly 0)", d)
	}
	for i := range fast.Nests {
		if d := fast.Nests[i].MaxDiff(slow.Nests[i]); d != 0 {
			t.Errorf("nest %d: fast differs from reference by %v (want exactly 0)", i, d)
		}
	}
}

// Steady-state coupling must be allocation-free: plans are prebuilt,
// payloads come from the world pool, and the boundary-cell store reuses
// its backing array. The allocation counter is process-global, so
// rank 0 measures while the other ranks run the identical call
// sequence bare: their coupling work overlaps rank 0's window (message
// dependencies keep the ranks in lockstep), so any allocation on any
// rank is caught, without testing machinery polluting the count.
func TestCouplingZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	// The nest footprint straddles all four parent quadrants so that
	// over a full coupling step (BC + feedback) every rank receives
	// from another rank: the mutual blocking keeps the ranks in
	// lockstep, bounding the payloads in flight to what the warmup
	// already pooled. (The phases must be measured together: in the BC
	// phase alone the northwest rank has no remote receive — its child
	// tile's halo parents are its own parent cells by construction — so
	// it would free-run ahead of the receivers' frees and draw fresh
	// buffers. The run loop always executes both phases per step.)
	cfg := nest.Root("parent", 32, 24)
	child := cfg.AddChild("nest", 16, 12, 2, 12, 8)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	grid := vtopo.Grid{Px: 2, Py: 2}
	params := solver.DefaultParams()
	nestParams := params
	nestParams.Dt = params.Dt / float64(child.Ratio)
	nestParams.Dx = params.Dx / float64(child.Ratio)

	const runs = 10
	var cplAvg float64
	_, err := mpi.Run(grid.Size(), mpi.AlphaBeta{Alpha: 1e-6, Beta: 1e-9}, func(p *mpi.Proc) error {
		world := p.World()
		me := world.Rank()
		px0, py0, pw, ph := solver.Decompose(cfg.NX, cfg.NY, grid, me)
		parent, err := solver.NewTile(cfg.NX, cfg.NY, px0, py0, pw, ph, params)
		if err != nil {
			return err
		}
		parent.Fill(solver.GaussianHill(cfg.NX, cfg.NY, 16, 12, 0.4, 4))

		nc := &nestCtx{d: child, idx: 0, grid: grid, comm: world}
		nc.world = make([]int, grid.Size())
		for r := range nc.world {
			nc.world[r] = r
		}
		x0, y0, w, h := solver.Decompose(child.NX, child.NY, grid, me)
		tile, err := solver.NewTile(child.NX, child.NY, x0, y0, w, h, nestParams)
		if err != nil {
			return err
		}
		tile.Fill(func(gx, gy int) (float64, float64, float64) {
			return initialParentValue(cfg, child.OffX+gx/child.Ratio, child.OffY+gy/child.Ratio)
		})
		nc.tile = tile
		nc.bcPlan = newBCPlan(bcPattern(cfg, grid, child, nc.grid, nc.world), grid.Size())
		nc.fbPlan = buildFBPlan(cfg, grid, child, nc.grid, nc.world)
		nc.fbPayloads = make([][]float64, nc.fbPlan.inboxLen[me])

		couple := func() {
			if err := exchangeBC(world, grid, parent, nc, cfg); err != nil {
				t.Error(err)
			}
			if err := exchangeFeedback(world, grid, parent, nc, cfg); err != nil {
				t.Error(err)
			}
		}
		for i := 0; i < 3; i++ {
			couple()
		}
		if err := world.Barrier(); err != nil {
			return err
		}
		if me == 0 {
			cplAvg = testing.AllocsPerRun(runs, couple)
		} else {
			for i := 0; i < runs+1; i++ { // AllocsPerRun runs 1 warmup + runs
				couple()
			}
		}
		return world.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if cplAvg != 0 {
		t.Errorf("exchangeBC+exchangeFeedback: %v allocs per coupling step, want 0", cplAvg)
	}
}
