package wrfsim

import (
	"errors"
	"math"
	"testing"

	"nestwrf/internal/mpi"
	"nestwrf/internal/nest"
	"nestwrf/internal/solver"
)

func testConfig() *nest.Domain {
	// Sibling point counts 2880:1728 split an 8x4 process grid 20:12,
	// which balances the per-rank load almost perfectly (144 points
	// each) — the regime the paper's allocator aims for.
	root := nest.Root("parent", 64, 64)
	root.AddChild("nest1", 60, 48, 3, 2, 2)
	root.AddChild("nest2", 48, 36, 3, 30, 30)
	return root
}

func baseOpts(s Strategy) Options {
	return Options{
		Ranks:    32,
		Steps:    3,
		Strategy: s,
		// The concurrent strategy only wins when scaling is sub-linear
		// (the paper's premise): per-message latency must be significant
		// against the per-rank compute of these small test domains.
		PointCost: 1e-6,
		TM:        mpi.AlphaBeta{Alpha: 5e-5, Beta: 1e-9},
	}
}

func TestRunValidation(t *testing.T) {
	cfg := testConfig()
	opt := baseOpts(Sequential)
	opt.Steps = 0
	if _, err := Run(cfg, opt); !errors.Is(err, ErrBadSteps) {
		t.Errorf("zero steps: %v", err)
	}
	deep := nest.Root("p", 100, 100)
	mid := deep.AddChild("m", 60, 60, 3, 10, 10)
	mid.AddChild("g", 30, 30, 3, 2, 2)
	if _, err := Run(deep, baseOpts(Sequential)); !errors.Is(err, ErrTooDeep) {
		t.Errorf("deep config: %v", err)
	}
	bad := nest.Root("p", -5, 10)
	if _, err := Run(bad, baseOpts(Sequential)); err == nil {
		t.Error("invalid domain should fail")
	}
}

func TestSequentialRunProducesStates(t *testing.T) {
	out, err := Run(testConfig(), baseOpts(Sequential))
	if err != nil {
		t.Fatal(err)
	}
	if out.Parent == nil {
		t.Fatal("no parent state")
	}
	if len(out.Nests) != 2 || out.Nests[0] == nil || out.Nests[1] == nil {
		t.Fatalf("nest states missing: %v", out.Nests)
	}
	if out.Nests[0].NX != 60 || out.Nests[0].NY != 48 {
		t.Errorf("nest 1 dims %dx%d", out.Nests[0].NX, out.Nests[0].NY)
	}
	for i, h := range out.Parent.H {
		if math.IsNaN(h) || h <= 0 || h > 3 {
			t.Fatalf("parent cell %d: unphysical height %v", i, h)
		}
	}
	if out.MaxClock <= 0 || out.AvgWait < 0 {
		t.Errorf("clock %v, wait %v", out.MaxClock, out.AvgWait)
	}
}

// The headline end-to-end validation: both strategies compute the same
// weather — bit-identical, since feedback accumulates every parent
// cell's child block in canonical order regardless of decomposition —
// and the concurrent strategy finishes in less virtual time.
func TestStrategiesAgreeAndConcurrentIsFaster(t *testing.T) {
	cfg := testConfig()
	seq, err := Run(cfg, baseOpts(Sequential))
	if err != nil {
		t.Fatal(err)
	}
	con, err := Run(cfg, baseOpts(Concurrent))
	if err != nil {
		t.Fatal(err)
	}

	if d := seq.Parent.MaxDiff(con.Parent); d != 0 {
		t.Errorf("parent fields differ between strategies by %v", d)
	}
	for i := range seq.Nests {
		if d := seq.Nests[i].MaxDiff(con.Nests[i]); d != 0 {
			t.Errorf("nest %d fields differ between strategies by %v", i, d)
		}
	}

	t.Logf("virtual makespan: sequential %.6f s, concurrent %.6f s", seq.MaxClock, con.MaxClock)
	if con.MaxClock >= seq.MaxClock {
		t.Errorf("concurrent makespan %.6f should beat sequential %.6f", con.MaxClock, seq.MaxClock)
	}
}

// Feedback must actually modify the parent: a run whose nests see a
// different initial bump must diverge from a hypothetical parent-only
// evolution. We verify the nest footprint region of the parent carries
// fine-grid information (values differ from the immediate neighbours'
// smooth field at above-noise level is too vague; instead check that
// nest feedback changed the parent relative to zero-feedback).
func TestFeedbackAffectsParent(t *testing.T) {
	cfg := testConfig()
	withNests, err := Run(cfg, baseOpts(Sequential))
	if err != nil {
		t.Fatal(err)
	}
	// Same parent without nests.
	bare := nest.Root("parent", 64, 64)
	noNests, err := Run(bare, baseOpts(Sequential))
	if err != nil {
		t.Fatal(err)
	}
	if d := withNests.Parent.MaxDiff(noNests.Parent); d == 0 {
		t.Error("nest feedback had no effect on the parent")
	}
}

func TestMassRemainsPhysical(t *testing.T) {
	out, err := Run(testConfig(), baseOpts(Concurrent))
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range out.Nests {
		for j, h := range st.H {
			if math.IsNaN(h) || h <= 0 || h > 3 {
				t.Fatalf("nest %d cell %d: unphysical height %v", i, j, h)
			}
		}
	}
}

// Virtual times are deterministic across repeated runs.
func TestDeterministicVirtualTime(t *testing.T) {
	cfg := testConfig()
	a, err := Run(cfg, baseOpts(Concurrent))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, baseOpts(Concurrent))
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxClock != b.MaxClock || a.AvgWait != b.AvgWait {
		t.Errorf("runs differ: clock %v vs %v, wait %v vs %v",
			a.MaxClock, b.MaxClock, a.AvgWait, b.AvgWait)
	}
	if d := a.Parent.MaxDiff(b.Parent); d != 0 {
		t.Errorf("fields differ between identical runs by %v", d)
	}
}

// Custom weights steer the partition sizes.
func TestCustomWeights(t *testing.T) {
	cfg := testConfig()
	opt := baseOpts(Concurrent)
	opt.Weights = []float64{3, 1}
	out, err := Run(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if out.Parent == nil {
		t.Fatal("no parent state")
	}
}

func TestSingleRankRun(t *testing.T) {
	cfg := nest.Root("p", 20, 20)
	cfg.AddChild("c", 18, 18, 3, 1, 1)
	opt := Options{Ranks: 1, Steps: 2, Strategy: Sequential, PointCost: 1e-6}
	out, err := Run(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if out.Parent == nil || out.Nests[0] == nil {
		t.Fatal("missing states on single-rank run")
	}
}

func TestOwnerIdxMatchesDecompose(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{{40, 4}, {41, 4}, {7, 3}, {5, 8}} {
		// Build the ownership from Decompose's share and compare.
		starts := make([]int, tc.parts+1)
		pos := 0
		for i := 0; i < tc.parts; i++ {
			base := tc.n / tc.parts
			if i < tc.n%tc.parts {
				base++
			}
			starts[i] = pos
			pos += base
		}
		starts[tc.parts] = pos
		for g := 0; g < tc.n; g++ {
			want := 0
			for i := 0; i < tc.parts; i++ {
				if g >= starts[i] && g < starts[i+1] {
					want = i
					break
				}
			}
			if got := ownerIdx(tc.n, tc.parts, g); got != want {
				t.Fatalf("ownerIdx(%d,%d,%d) = %d, want %d", tc.n, tc.parts, g, got, want)
			}
		}
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{-1, 3, -1}, {0, 3, 0}, {2, 3, 0}, {3, 3, 1}, {-3, 3, -1}, {-4, 3, -2},
	}
	for _, tc := range cases {
		if got := floorDiv(tc.a, tc.b); got != tc.want {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

// The functional simulator accepts the second-order scheme; strategies
// still agree on the forecast.
func TestRichtmyerFunctional(t *testing.T) {
	opt := baseOpts(Sequential)
	p := solver.DefaultParams()
	p.Scheme = solver.Richtmyer
	opt.Params = p
	seq, err := Run(testConfig(), opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Strategy = Concurrent
	con, err := Run(testConfig(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if d := seq.Parent.MaxDiff(con.Parent); d != 0 {
		t.Errorf("Richtmyer strategies differ by %v", d)
	}
}

// TestPhaseBreakdownPopulated checks the functional run reports a
// per-phase breakdown whose compute time covers every rank's clock
// advance and whose wait sums match the scalar aggregates.
func TestPhaseBreakdownPopulated(t *testing.T) {
	out, err := Run(testConfig(), baseOpts(Concurrent))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Phases) == 0 {
		t.Fatal("no phase breakdown")
	}
	byName := map[string]mpi.PhaseTotal{}
	var wait, maxWait float64
	for _, ph := range out.Phases {
		byName[ph.Name] = ph
		wait += ph.Sum.Wait
		if ph.MaxWait > maxWait {
			maxWait = ph.MaxWait
		}
	}
	for _, want := range []string{"parent", "coupling", "nest:nest1", "nest:nest2", "collect"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("missing phase %q (have %v)", want, out.Phases)
		}
	}
	if byName["parent"].Sum.Compute <= 0 || byName["parent"].Sum.SendCount == 0 {
		t.Errorf("parent phase looks empty: %+v", byName["parent"])
	}
	// Every rank must have entered the parent phase.
	if byName["parent"].Ranks != 32 {
		t.Errorf("parent phase ranks = %d, want 32", byName["parent"].Ranks)
	}
	if avg := wait / 32; math.Abs(avg-out.AvgWait) > 1e-9*math.Max(1, out.AvgWait) {
		t.Errorf("phase wait sum/ranks = %v, AvgWait = %v", avg, out.AvgWait)
	}
	// MaxWait is over ranks, max phase wait is over (phase, rank) pairs,
	// so the former bounds the latter from above.
	if maxWait > out.MaxWait+1e-12 {
		t.Errorf("max phase wait %v exceeds MaxWait %v", maxWait, out.MaxWait)
	}
}
