// Package stats provides the small statistical helpers used by the
// experiment harness: means, extrema, and percentage improvements as
// reported in the paper's tables.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Improvement returns the percentage improvement of cur over old:
// 100*(old-cur)/old. Positive means cur is faster.
func Improvement(old, cur float64) float64 {
	if old == 0 {
		return 0
	}
	return 100 * (old - cur) / old
}

// Improvements maps Improvement over paired slices.
func Improvements(old, cur []float64) []float64 {
	n := len(old)
	if len(cur) < n {
		n = len(cur)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = Improvement(old[i], cur[i])
	}
	return out
}

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Summary bundles the aggregate statistics the paper reports.
type Summary struct {
	Mean, Max, Min, Median, Stddev float64
	N                              int
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		Mean:   Mean(xs),
		Max:    Max(xs),
		Min:    Min(xs),
		Median: Median(xs),
		Stddev: Stddev(xs),
		N:      len(xs),
	}
}
