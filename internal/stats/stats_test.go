package stats

import (
	"math"
	"testing"
)

func TestMeanMaxMin(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Mean(xs) != 2.8 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Max(xs) != 5 || Min(xs) != 1 {
		t.Errorf("Max/Min = %v/%v", Max(xs), Min(xs))
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 {
		t.Error("empty slices should give 0")
	}
}

func TestImprovement(t *testing.T) {
	if Improvement(10, 8) != 20 {
		t.Errorf("Improvement(10,8) = %v", Improvement(10, 8))
	}
	if Improvement(10, 12) != -20 {
		t.Errorf("Improvement(10,12) = %v", Improvement(10, 12))
	}
	if Improvement(0, 5) != 0 {
		t.Error("zero old should give 0")
	}
	imps := Improvements([]float64{10, 20}, []float64{5, 10})
	if len(imps) != 2 || imps[0] != 50 || imps[1] != 50 {
		t.Errorf("Improvements = %v", imps)
	}
	// Mismatched lengths truncate.
	if got := Improvements([]float64{10}, []float64{5, 1}); len(got) != 1 {
		t.Errorf("mismatched Improvements = %v", got)
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median")
	}
	if Median(nil) != 0 {
		t.Error("empty median")
	}
	// Median must not mutate its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Error("Median mutated input")
	}
}

func TestStddev(t *testing.T) {
	if Stddev([]float64{2, 2, 2}) != 0 {
		t.Error("constant stddev")
	}
	got := Stddev([]float64{1, 3})
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("Stddev = %v, want 1", got)
	}
	if Stddev(nil) != 0 {
		t.Error("empty stddev")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Max != 4 || s.Min != 1 || s.Median != 2.5 {
		t.Errorf("Summary = %+v", s)
	}
}
