package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestStreamMatchesBatchStatistics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var xs []float64
	s := NewStream(0.5)
	for i := 0; i < 5000; i++ {
		x := r.NormFloat64()*3 + 10
		xs = append(xs, x)
		s.Add(x)
	}
	if got, want := s.Mean, Mean(xs); math.Abs(got-want) > 1e-9 {
		t.Errorf("mean %v want %v", got, want)
	}
	if got, want := s.Stddev(), Stddev(xs); math.Abs(got-want) > 1e-9 {
		t.Errorf("stddev %v want %v", got, want)
	}
	if got, want := s.Min, Min(xs); got != want {
		t.Errorf("min %v want %v", got, want)
	}
	if got, want := s.Max, Max(xs); got != want {
		t.Errorf("max %v want %v", got, want)
	}
	med, err := s.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if want := Median(xs); math.Abs(med-want) > 0.2 {
		t.Errorf("P2 median %v too far from exact %v", med, want)
	}
}

// The P² estimate must track exact quantiles closely on smooth
// distributions across the probabilities the ensemble engine uses.
func TestP2AccuracyAgainstExactQuantiles(t *testing.T) {
	for _, p := range []float64{0.1, 0.5, 0.9} {
		for seed := int64(1); seed <= 3; seed++ {
			r := rand.New(rand.NewSource(seed))
			q := NewP2(p)
			var xs []float64
			for i := 0; i < 20000; i++ {
				x := r.Float64() * 100
				xs = append(xs, x)
				q.Add(x)
			}
			exact := exactQuantile(xs, p)
			if math.Abs(q.Value()-exact) > 1.0 { // 1% of the range
				t.Errorf("p=%v seed=%d: P2 %v exact %v", p, seed, q.Value(), exact)
			}
		}
	}
}

func exactQuantile(xs []float64, p float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	pos := p * float64(len(s)-1)
	lo := int(pos)
	hi := lo
	if lo+1 < len(s) {
		hi = lo + 1
	}
	return s[lo] + (pos-float64(lo))*(s[hi]-s[lo])
}

// Below five observations the estimator must be exact, and an empty
// one must read zero.
func TestP2SmallStreams(t *testing.T) {
	q := NewP2(0.5)
	if q.Value() != 0 {
		t.Errorf("empty estimator reads %v", q.Value())
	}
	q.Add(7)
	if q.Value() != 7 {
		t.Errorf("single observation reads %v", q.Value())
	}
	q.Add(1)
	q.Add(3)
	if got := q.Value(); got != 3 {
		t.Errorf("median of {1,3,7} = %v", got)
	}
}

// A checkpointed accumulator must resume bit-exactly: serializing
// mid-stream and continuing must reach the same state as the
// uninterrupted stream.
func TestStreamJSONRoundTripBitExact(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.ExpFloat64() * 50
	}

	full := NewStream(0.1, 0.5, 0.9)
	for _, x := range xs {
		full.Add(x)
	}

	part := NewStream(0.1, 0.5, 0.9)
	for _, x := range xs[:137] {
		part.Add(x)
	}
	data, err := json.Marshal(part)
	if err != nil {
		t.Fatal(err)
	}
	resumed := &Stream{}
	if err := json.Unmarshal(data, resumed); err != nil {
		t.Fatal(err)
	}
	for _, x := range xs[137:] {
		resumed.Add(x)
	}

	if !reflect.DeepEqual(full, resumed) {
		t.Errorf("resumed stream diverged:\nfull    %+v\nresumed %+v", full, resumed)
	}
	a, _ := json.Marshal(full)
	b, _ := json.Marshal(resumed)
	if string(a) != string(b) {
		t.Errorf("JSON mismatch:\n%s\n%s", a, b)
	}
}

func TestStreamSummarize(t *testing.T) {
	s := NewStream(0.5)
	for _, x := range []float64{1, 2, 3, 4, 100} {
		s.Add(x)
	}
	sum := s.Summarize()
	if sum.N != 5 || sum.Min != 1 || sum.Max != 100 {
		t.Errorf("summary %+v", sum)
	}
	if sum.Median != 3 {
		t.Errorf("median %v", sum.Median)
	}
	if math.Abs(sum.Mean-22) > 1e-12 {
		t.Errorf("mean %v", sum.Mean)
	}
	if _, err := s.Quantile(0.25); err == nil {
		t.Error("untracked quantile should error")
	}
}
