package stats

import (
	"fmt"
	"math"
	"sort"
)

// P2 is a streaming quantile estimator (Jain & Chlamtac's P² algorithm):
// it tracks one quantile of an unbounded observation stream with five
// markers — O(1) memory and O(1) per observation — instead of retaining
// the data. The estimate is exact until five observations have arrived
// and approximate afterwards.
//
// All state is held in exported fields so an estimator survives a JSON
// round trip bit-exactly (encoding/json renders float64 with the
// shortest representation that round-trips): an ensemble campaign
// checkpoints its accumulators mid-stream and resumes them with no
// drift. The update is a fixed sequence of float operations, so feeding
// the same observations in the same order always yields the same state.
type P2 struct {
	// P is the tracked quantile probability in (0, 1).
	P float64 `json:"p"`
	// Count is the number of observations so far.
	Count int64 `json:"count"`
	// Heights are the marker heights q_i (Heights[2] estimates the
	// quantile once Count >= 5).
	Heights [5]float64 `json:"heights"`
	// Positions are the actual marker positions n_i.
	Positions [5]float64 `json:"positions"`
	// Desired are the desired marker positions n'_i.
	Desired [5]float64 `json:"desired"`
	// Initial buffers the first five observations.
	Initial [5]float64 `json:"initial"`
}

// NewP2 returns an estimator for the p-quantile (0 < p < 1).
func NewP2(p float64) *P2 { return &P2{P: p} }

// Add feeds one observation.
func (q *P2) Add(x float64) {
	if q.Count < 5 {
		q.Initial[q.Count] = x
		q.Count++
		if q.Count == 5 {
			s := q.Initial
			sort.Float64s(s[:])
			q.Heights = s
			q.Positions = [5]float64{1, 2, 3, 4, 5}
			q.Desired = [5]float64{1, 1 + 2*q.P, 1 + 4*q.P, 3 + 2*q.P, 5}
		}
		return
	}
	// Locate the cell k with Heights[k] <= x < Heights[k+1], extending
	// the extreme markers when x falls outside them.
	var k int
	switch {
	case x < q.Heights[0]:
		q.Heights[0] = x
		k = 0
	case x >= q.Heights[4]:
		q.Heights[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < q.Heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.Positions[i]++
	}
	inc := [5]float64{0, q.P / 2, q.P, (1 + q.P) / 2, 1}
	for i := range q.Desired {
		q.Desired[i] += inc[i]
	}
	// Nudge the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := q.Desired[i] - q.Positions[i]
		if (d >= 1 && q.Positions[i+1]-q.Positions[i] > 1) ||
			(d <= -1 && q.Positions[i-1]-q.Positions[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1
			}
			h := q.parabolic(i, s)
			if !(q.Heights[i-1] < h && h < q.Heights[i+1]) {
				h = q.linear(i, s)
			}
			q.Heights[i] = h
			q.Positions[i] += s
		}
	}
	q.Count++
}

// parabolic is the P² piecewise-parabolic height adjustment for marker
// i moved by s (+1 or -1).
func (q *P2) parabolic(i int, s float64) float64 {
	return q.Heights[i] + s/(q.Positions[i+1]-q.Positions[i-1])*
		((q.Positions[i]-q.Positions[i-1]+s)*(q.Heights[i+1]-q.Heights[i])/(q.Positions[i+1]-q.Positions[i])+
			(q.Positions[i+1]-q.Positions[i]-s)*(q.Heights[i]-q.Heights[i-1])/(q.Positions[i]-q.Positions[i-1]))
}

// linear is the fallback height adjustment when the parabolic estimate
// leaves the neighbouring markers' interval.
func (q *P2) linear(i int, s float64) float64 {
	j := i + int(s)
	return q.Heights[i] + s*(q.Heights[j]-q.Heights[i])/(q.Positions[j]-q.Positions[i])
}

// Value returns the current quantile estimate: exact (by sorting the
// buffered observations) below five observations, the centre marker
// height afterwards. An empty estimator reads zero.
func (q *P2) Value() float64 {
	n := int(q.Count)
	if n == 0 {
		return 0
	}
	if n < 5 {
		s := append([]float64(nil), q.Initial[:n]...)
		sort.Float64s(s)
		pos := q.P * float64(n-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		if lo < 0 {
			lo = 0
		}
		if hi > n-1 {
			hi = n - 1
		}
		return s[lo] + (pos-float64(lo))*(s[hi]-s[lo])
	}
	return q.Heights[2]
}

// Stream is an online accumulator of mean, variance (Welford's
// update), extrema and any number of P² quantile estimators. It holds
// O(1) state regardless of how many observations it has seen, and —
// like P2 — is JSON-serializable bit-exactly mid-stream, so streaming
// campaign aggregates survive checkpoint/resume with no drift.
//
// A Stream is not safe for concurrent Add; the ensemble engine feeds
// it from a single committer goroutine in deterministic member order.
type Stream struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	// M2 is the running sum of squared deviations (Welford).
	M2  float64 `json:"m2"`
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Quantiles are the registered P² estimators, in registration
	// order.
	Quantiles []*P2 `json:"quantiles,omitempty"`
}

// NewStream returns a Stream tracking the given quantile
// probabilities (each in (0,1)) alongside mean/variance/extrema.
func NewStream(probs ...float64) *Stream {
	s := &Stream{}
	for _, p := range probs {
		s.Quantiles = append(s.Quantiles, NewP2(p))
	}
	return s
}

// Add feeds one observation.
func (s *Stream) Add(x float64) {
	s.Count++
	if s.Count == 1 {
		s.Min, s.Max = x, x
	} else {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	d := x - s.Mean
	s.Mean += d / float64(s.Count)
	s.M2 += d * (x - s.Mean)
	for _, q := range s.Quantiles {
		q.Add(x)
	}
}

// Variance returns the population variance seen so far.
func (s *Stream) Variance() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.M2 / float64(s.Count)
}

// Stddev returns the population standard deviation seen so far.
func (s *Stream) Stddev() float64 { return math.Sqrt(s.Variance()) }

// Quantile returns the estimate for probability p, which must match a
// probability the Stream was constructed with.
func (s *Stream) Quantile(p float64) (float64, error) {
	for _, q := range s.Quantiles {
		if q.P == p {
			return q.Value(), nil
		}
	}
	return 0, fmt.Errorf("stats: stream does not track the %g-quantile", p)
}

// Summarize renders the stream as the package's batch Summary (Median
// is filled from a tracked 0.5-quantile when present).
func (s *Stream) Summarize() Summary {
	sum := Summary{
		Mean:   s.Mean,
		Max:    s.Max,
		Min:    s.Min,
		Stddev: s.Stddev(),
		N:      int(s.Count),
	}
	if med, err := s.Quantile(0.5); err == nil {
		sum.Median = med
	}
	return sum
}
