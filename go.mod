module nestwrf

go 1.24
